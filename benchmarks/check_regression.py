"""Benchmark-regression gate: compare the newest two ``BENCH_*.json``.

Usage (CI runs this right after the benchmark suite)::

    python benchmarks/check_regression.py [--threshold 0.25] [repo_root]

The script finds the two most recent ``BENCH_*.json`` artifacts at the repo
root, compares the mean runtime of every *named* benchmark present in both,
and exits non-zero if any slowed down by more than the threshold (default
25%).  Benchmarks present in only one artifact are reported but never fail
the gate (new benchmarks appear, old ones are retired), and sub-50ms means
are ignored — at that scale the signal is noise.

Artifacts are named ``BENCH_<date>.json`` for the first run of a day and
``BENCH_<date>_<n>.json`` for same-day reruns (``n`` monotonically
increasing; the suffixless artifact counts as run 1).  The conftest
allocates names through :func:`next_artifact_name`, so a rerun can never
overwrite the artifact it must be compared against, and recency is decided
by :func:`artifact_key` — ``(date, run)`` with the run parsed numerically —
never by raw filename order (lexicographically ``_10`` would sort before
``_9``).  :func:`prune_history` bounds the retained history.

Artifacts live in a managed ``bench_history/`` directory
(:func:`history_root`), not loose at the repo root — local runs no longer
litter the tree, and the bounded pruning manages one dedicated directory.
``main`` still accepts a directory holding ``BENCH_*.json`` files directly
(CI stages its retained nightly history that way); given a repo root, it
automatically descends into ``bench_history/`` when that is where the
artifacts are.

Per-stage walls are gated too: a benchmark whose ``extra_info`` carries
``wall_<stage>_s`` entries (the paper-scale day and month runs serialize
the pipeline's stage-graph timings) contributes one additional named series
per stage, ``<name>[<stage>]``, so a regression confined to one stage
(say, ``compile``) fails the gate even if faster stages mask it in the
end-to-end mean.

Kept dependency-free and importable: the comparison logic
(:func:`compare_runs`) is unit-tested in ``tests/test_bench_gate.py``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
from typing import Dict, List, Tuple

#: Means below this are treated as noise and never gated.
MIN_GATED_SECONDS = 0.05

#: ``*_count`` series with a baseline below this are never gated: a
#: timing-dependent counter fluttering 1 -> 2 is noise, while a genuine
#: behavioural regression shows up as growth on a meaningful base.
MIN_GATED_COUNT = 5.0

#: Artifacts kept when the history is pruned (see :func:`prune_history`).
DEFAULT_HISTORY = 10

#: Directory (under the repo root) where benchmark artifacts are kept.
HISTORY_DIRNAME = "bench_history"

#: ``BENCH_<date>.json`` or ``BENCH_<date>_<n>.json``.
_ARTIFACT_RE = re.compile(r"^BENCH_(?P<date>.+?)(?:_(?P<run>\d+))?\.json$")


# ----------------------------------------------------------------------
# artifact naming and selection
# ----------------------------------------------------------------------
def artifact_key(path: pathlib.Path) -> Tuple[str, int]:
    """Recency key ``(date, run)`` of one artifact.

    The suffixless first run of a day is run 1; the run suffix is compared
    numerically so ``_10`` is newer than ``_9``.  A name the pattern does
    not recognize sorts by its stem with run 0 (older than any recognized
    run of the same stem).
    """
    match = _ARTIFACT_RE.match(path.name)
    if match is None:
        return path.stem, 0
    return match.group("date"), int(match.group("run") or 1)


def select_artifacts(root: pathlib.Path) -> List[pathlib.Path]:
    """Every ``BENCH_*.json`` under ``root``, oldest first by
    :func:`artifact_key`."""
    return sorted(root.glob("BENCH_*.json"), key=artifact_key)


def history_root(root: pathlib.Path, create: bool = False) -> pathlib.Path:
    """The managed artifact directory for a repo root.

    Artifacts written by the benchmark conftest land here (not loose at
    the repo root); ``create=True`` makes the directory on first use.
    """
    history = root / HISTORY_DIRNAME
    if create:
        history.mkdir(parents=True, exist_ok=True)
    return history


def resolve_artifact_dir(root: pathlib.Path) -> pathlib.Path:
    """Where ``main`` should look for artifacts under ``root``.

    A directory that holds ``BENCH_*.json`` files directly (CI's staged
    history) is used as-is; otherwise the managed ``bench_history/``
    subdirectory is preferred when it exists, falling back to ``root``
    (pre-migration layouts keep working).
    """
    if select_artifacts(root):
        return root
    history = root / HISTORY_DIRNAME
    if history.is_dir():
        return history
    return root


def next_artifact_name(root: pathlib.Path, date: str) -> str:
    """The name the next run of ``date`` should serialize to.

    The first run of a day keeps the historical ``BENCH_<date>.json``;
    reruns get ``_<n>`` suffixes above the highest run already present, so
    a same-day rerun never clobbers the baseline it will be gated against.
    """
    runs = [artifact_key(path)[1] for path in root.glob("BENCH_*.json")
            if artifact_key(path)[0] == date]
    if not runs:
        return f"BENCH_{date}.json"
    return f"BENCH_{date}_{max(runs) + 1}.json"


def prune_history(root: pathlib.Path,
                  keep: int = DEFAULT_HISTORY) -> List[pathlib.Path]:
    """Delete all but the newest ``keep`` artifacts; returns the deleted
    paths (oldest first)."""
    if keep < 1:
        raise ValueError("keep must be at least 1")
    artifacts = select_artifacts(root)
    doomed = artifacts[:-keep] if len(artifacts) > keep else []
    for path in doomed:
        path.unlink()
    return doomed


def load_benchmarks(path: pathlib.Path) -> Dict[str, float]:
    """Map benchmark name -> mean seconds from one artifact.

    Besides the end-to-end mean of every benchmark, selected numeric
    ``extra_info`` entries become their own named series so regressions
    confined to one component gate alongside the totals:

    * ``wall_<stage>_s`` — pipeline stage walls, series ``name[stage]``;
    * ``*_wall_s`` — component wall clocks (e.g. ``cluster_map_wall_s``),
      series ``name[key]``;
    * ``*_count`` — behavioural counters (e.g. ``cluster_redispatch_count``
      — more re-dispatches means workers are being declared dead more
      often), series ``name[key]``.  Counters share the growth gate but
      use :data:`MIN_GATED_COUNT` as their noise floor, so single-digit
      flutter (1 -> 2 on a loaded runner) never fails a night.

    The suffixes are therefore a contract for benchmark authors: name an
    extra-info key ``*_wall_s``/``*_count`` only when its growth should
    fail the gate (environmental facts use other spellings, e.g.
    ``cpu_cores``; deliberately volatile walls use ``*_seconds``).
    """
    payload = json.loads(path.read_text(encoding="utf-8"))
    series: Dict[str, float] = {}
    for bench in payload.get("benchmarks", []):
        series[bench["name"]] = float(bench["mean_s"])
        for key, value in (bench.get("extra_info") or {}).items():
            if not isinstance(value, (int, float)) \
                    or isinstance(value, bool):
                continue
            if key.startswith("wall_") and key.endswith("_s"):
                stage = key[len("wall_"):-len("_s")]
                series[f"{bench['name']}[{stage}]"] = float(value)
            elif key.endswith("_wall_s") or key.endswith("_count"):
                series[f"{bench['name']}[{key}]"] = float(value)
    return series


def compare_runs(previous: Dict[str, float], current: Dict[str, float],
                 threshold: float = 0.25
                 ) -> Tuple[List[str], List[str]]:
    """``(regressions, notes)`` between two name->mean mappings.

    A regression is a benchmark in both runs whose mean grew by more than
    ``threshold`` (fractional) and whose previous value was large enough
    to be meaningful — :data:`MIN_GATED_SECONDS` for timings,
    :data:`MIN_GATED_COUNT` for ``*_count`` counter series.  Notes record
    benchmarks that appeared or disappeared.
    """
    regressions: List[str] = []
    notes: List[str] = []
    for name in sorted(set(previous) | set(current)):
        if name not in previous:
            notes.append(f"new benchmark: {name} "
                         f"({current[name]:.3f}s)")
            continue
        if name not in current:
            notes.append(f"benchmark disappeared: {name}")
            continue
        before, after = previous[name], current[name]
        floor = MIN_GATED_COUNT if name.endswith("_count]") \
            else MIN_GATED_SECONDS
        if before < floor:
            continue
        growth = (after - before) / before
        if growth > threshold:
            regressions.append(
                f"{name}: {before:.3f}s -> {after:.3f}s "
                f"(+{growth:.0%}, threshold {threshold:.0%})")
    return regressions, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("root", nargs="?", default=".",
                        help="repo root (artifacts under bench_history/) "
                             "or a directory holding BENCH_*.json directly")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fractional slowdown that fails the gate")
    args = parser.parse_args(argv)

    root = resolve_artifact_dir(pathlib.Path(args.root))
    artifacts = select_artifacts(root)
    if len(artifacts) < 2:
        print(f"benchmark gate: {len(artifacts)} artifact(s) under "
              f"{root} - nothing to compare, passing")
        return 0
    previous_path, current_path = artifacts[-2], artifacts[-1]
    previous = load_benchmarks(previous_path)
    current = load_benchmarks(current_path)
    regressions, notes = compare_runs(previous, current,
                                      threshold=args.threshold)
    print(f"benchmark gate: {previous_path.name} -> {current_path.name}")
    for note in notes:
        print(f"  note: {note}")
    if regressions:
        for regression in regressions:
            print(f"  REGRESSION {regression}")
        return 1
    print(f"  {len(set(previous) & set(current))} shared benchmark(s) "
          f"within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
