"""Benchmark-regression gate: compare the newest two ``BENCH_*.json``.

Usage (CI runs this right after the benchmark suite)::

    python benchmarks/check_regression.py [--threshold 0.25] [repo_root]

The script finds the two most recent ``BENCH_*.json`` artifacts at the repo
root, compares the mean runtime of every *named* benchmark present in both,
and exits non-zero if any slowed down by more than the threshold (default
25%).  Benchmarks present in only one artifact are reported but never fail
the gate (new benchmarks appear, old ones are retired), and sub-50ms means
are ignored — at that scale the signal is noise.

Artifacts are named ``BENCH_<date>.json`` for the first run of a day and
``BENCH_<date>_<n>.json`` for same-day reruns (``n`` monotonically
increasing; the suffixless artifact counts as run 1).  The conftest
allocates names through :func:`next_artifact_name`, so a rerun can never
overwrite the artifact it must be compared against, and recency is decided
by :func:`artifact_key` — ``(date, run)`` with the run parsed numerically —
never by raw filename order (lexicographically ``_10`` would sort before
``_9``).  :func:`prune_history` bounds the retained history.

Per-stage walls are gated too: a benchmark whose ``extra_info`` carries
``wall_<stage>_s`` entries (the paper-scale day and month runs serialize
the pipeline's stage-graph timings) contributes one additional named series
per stage, ``<name>[<stage>]``, so a regression confined to one stage
(say, ``compile``) fails the gate even if faster stages mask it in the
end-to-end mean.

Kept dependency-free and importable: the comparison logic
(:func:`compare_runs`) is unit-tested in ``tests/test_bench_gate.py``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys
from typing import Dict, List, Tuple

#: Means below this are treated as noise and never gated.
MIN_GATED_SECONDS = 0.05

#: Artifacts kept when the history is pruned (see :func:`prune_history`).
DEFAULT_HISTORY = 10

#: ``BENCH_<date>.json`` or ``BENCH_<date>_<n>.json``.
_ARTIFACT_RE = re.compile(r"^BENCH_(?P<date>.+?)(?:_(?P<run>\d+))?\.json$")


# ----------------------------------------------------------------------
# artifact naming and selection
# ----------------------------------------------------------------------
def artifact_key(path: pathlib.Path) -> Tuple[str, int]:
    """Recency key ``(date, run)`` of one artifact.

    The suffixless first run of a day is run 1; the run suffix is compared
    numerically so ``_10`` is newer than ``_9``.  A name the pattern does
    not recognize sorts by its stem with run 0 (older than any recognized
    run of the same stem).
    """
    match = _ARTIFACT_RE.match(path.name)
    if match is None:
        return path.stem, 0
    return match.group("date"), int(match.group("run") or 1)


def select_artifacts(root: pathlib.Path) -> List[pathlib.Path]:
    """Every ``BENCH_*.json`` under ``root``, oldest first by
    :func:`artifact_key`."""
    return sorted(root.glob("BENCH_*.json"), key=artifact_key)


def next_artifact_name(root: pathlib.Path, date: str) -> str:
    """The name the next run of ``date`` should serialize to.

    The first run of a day keeps the historical ``BENCH_<date>.json``;
    reruns get ``_<n>`` suffixes above the highest run already present, so
    a same-day rerun never clobbers the baseline it will be gated against.
    """
    runs = [artifact_key(path)[1] for path in root.glob("BENCH_*.json")
            if artifact_key(path)[0] == date]
    if not runs:
        return f"BENCH_{date}.json"
    return f"BENCH_{date}_{max(runs) + 1}.json"


def prune_history(root: pathlib.Path,
                  keep: int = DEFAULT_HISTORY) -> List[pathlib.Path]:
    """Delete all but the newest ``keep`` artifacts; returns the deleted
    paths (oldest first)."""
    if keep < 1:
        raise ValueError("keep must be at least 1")
    artifacts = select_artifacts(root)
    doomed = artifacts[:-keep] if len(artifacts) > keep else []
    for path in doomed:
        path.unlink()
    return doomed


def load_benchmarks(path: pathlib.Path) -> Dict[str, float]:
    """Map benchmark name -> mean seconds from one artifact.

    Besides the end-to-end mean of every benchmark, each numeric
    ``wall_<stage>_s`` entry in a benchmark's ``extra_info`` becomes its own
    named series (``name[stage]``), so per-stage regressions gate alongside
    the totals.
    """
    payload = json.loads(path.read_text(encoding="utf-8"))
    series: Dict[str, float] = {}
    for bench in payload.get("benchmarks", []):
        series[bench["name"]] = float(bench["mean_s"])
        for key, value in (bench.get("extra_info") or {}).items():
            if key.startswith("wall_") and key.endswith("_s") \
                    and isinstance(value, (int, float)):
                stage = key[len("wall_"):-len("_s")]
                series[f"{bench['name']}[{stage}]"] = float(value)
    return series


def compare_runs(previous: Dict[str, float], current: Dict[str, float],
                 threshold: float = 0.25
                 ) -> Tuple[List[str], List[str]]:
    """``(regressions, notes)`` between two name->mean mappings.

    A regression is a benchmark in both runs whose mean grew by more than
    ``threshold`` (fractional) and whose previous mean was large enough to
    be meaningful.  Notes record benchmarks that appeared or disappeared.
    """
    regressions: List[str] = []
    notes: List[str] = []
    for name in sorted(set(previous) | set(current)):
        if name not in previous:
            notes.append(f"new benchmark: {name} "
                         f"({current[name]:.3f}s)")
            continue
        if name not in current:
            notes.append(f"benchmark disappeared: {name}")
            continue
        before, after = previous[name], current[name]
        if before < MIN_GATED_SECONDS:
            continue
        growth = (after - before) / before
        if growth > threshold:
            regressions.append(
                f"{name}: {before:.3f}s -> {after:.3f}s "
                f"(+{growth:.0%}, threshold {threshold:.0%})")
    return regressions, notes


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("root", nargs="?", default=".",
                        help="repo root holding BENCH_*.json artifacts")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fractional slowdown that fails the gate")
    args = parser.parse_args(argv)

    root = pathlib.Path(args.root)
    artifacts = select_artifacts(root)
    if len(artifacts) < 2:
        print(f"benchmark gate: {len(artifacts)} artifact(s) under "
              f"{root} - nothing to compare, passing")
        return 0
    previous_path, current_path = artifacts[-2], artifacts[-1]
    previous = load_benchmarks(previous_path)
    current = load_benchmarks(current_path)
    regressions, notes = compare_runs(previous, current,
                                      threshold=args.threshold)
    print(f"benchmark gate: {previous_path.name} -> {current_path.name}")
    for note in notes:
        print(f"  note: {note}")
    if regressions:
        for regression in regressions:
            print(f"  REGRESSION {regression}")
        return 1
    print(f"  {len(set(previous) & set(current))} shared benchmark(s) "
          f"within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
