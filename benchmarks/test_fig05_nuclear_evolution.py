"""Figure 5: evolution of the Nuclear exploit kit over June-August 2014.

The timeline records the packer-level changes (above the axis in the paper's
figure) and payload-level changes (below the axis): 13 packer changes of
which only one is semantic, the AV-detection addition of July 29 and the
Silverlight CVE appended on August 27.
"""

from __future__ import annotations

import datetime

from repro.ekgen.evolution import default_timeline
from repro.evalharness import format_table

JUNE_1 = datetime.date(2014, 6, 1)
AUG_31 = datetime.date(2014, 8, 31)


def build_timeline_rows():
    timeline = default_timeline()
    rows = []
    for event in timeline.events_for("nuclear"):
        if not JUNE_1 <= event.date <= AUG_31:
            continue
        layer = "packer" if event.kind.startswith("packer") else "payload"
        rows.append([event.date.isoformat(), layer, event.kind,
                     event.description])
    return rows


def test_fig05_nuclear_evolution(benchmark):
    rows = benchmark(build_timeline_rows)
    print()
    print(format_table(["date", "layer", "kind", "change"], rows,
                       title="Figure 5: Nuclear exploit kit evolution "
                             "(June-August 2014)"))

    timeline = default_timeline()
    packer_changes = timeline.packer_change_dates("nuclear", JUNE_1, AUG_31)
    payload_events = [event for event in timeline.events_for("nuclear")
                      if event.kind in ("payload_cve", "av_check")
                      and JUNE_1 <= event.date <= AUG_31]
    semantic = [event for event in timeline.events_for("nuclear")
                if event.kind == "packer_semantic"]

    # Paper: 13 small syntactic changes, only one of which (8/12) changed the
    # packer's semantics; payload changes are rare (AV check on 7/29, one CVE
    # appended on 8/27) and nothing is ever removed.
    assert len(packer_changes) == 13
    assert len(semantic) == 1 and semantic[0].date == datetime.date(2014, 8, 12)
    assert len(payload_events) == 2
    assert {event.kind for event in payload_events} == {"payload_cve",
                                                        "av_check"}
    # The packer churns far more often than the payload.
    assert len(packer_changes) > 5 * len(payload_events) / 2

    # Packed samples actually change across each packer-change date while the
    # unpacked core stays identical (the onion property).
    from repro.ekgen.nuclear import NuclearKit
    import random

    kit = NuclearKit(timeline)
    core_before = kit.core_source(kit.version_for(datetime.date(2014, 8, 16)))
    core_after = kit.core_source(kit.version_for(datetime.date(2014, 8, 18)))
    assert core_before == core_after  # packer-only change on 8/17
    packed_before = kit.generate(datetime.date(2014, 8, 16), random.Random(1))
    packed_after = kit.generate(datetime.date(2014, 8, 18), random.Random(1))
    assert ("esa1asv" in packed_after.content
            and "esa1asv" not in packed_before.content)
