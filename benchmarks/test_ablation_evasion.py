"""Ablation: structural-signature evasion and the multi-window counter-measure
(paper, Section V "Deployment and avoidance").

The attacker inserts a random number of superfluous statements between the
packer's operations.  The bench measures, on a Nuclear cluster:

* the clean single-window signature stops matching the evaded variants;
* recompiling from the evaded cluster, the single-window signature is left
  with a much shorter (less specific) window, while the multi-window
  extension recovers several windows whose combined token count is higher and
  which keep matching fresh evaded variants with no benign false positives.
"""

from __future__ import annotations

import datetime
import random

from repro.ekgen import BenignGenerator, JunkStatementInserter, \
    TelemetryGenerator
from repro.evalharness import format_table
from repro.scanner.normalizer import normalize_for_scan
from repro.signatures import MultiWindowCompiler, MultiWindowConfig, \
    SignatureCompiler

DAY = datetime.date(2014, 8, 5)


def run_scenario(generator: TelemetryGenerator):
    kit = generator.kits["nuclear"]
    inserter = JunkStatementInserter(density=0.8, max_junk_per_site=2, seed=5)

    clean_cluster = [kit.generate(DAY, random.Random(300 + i)).content
                     for i in range(6)]
    evaded_cluster = [inserter.rewrite(
        kit.generate(DAY, random.Random(900 + i)).content, seed=i)
        for i in range(6)]
    fresh_evaded = [normalize_for_scan(inserter.rewrite(
        kit.generate(DAY, random.Random(990 + i)).content, seed=99 + i))
        for i in range(4)]
    benign = [normalize_for_scan(
        BenignGenerator().generate(DAY, random.Random(i)).content)
        for i in range(6)]

    clean_signature = SignatureCompiler().compile_cluster(
        clean_cluster, "nuclear", DAY)
    single_after = SignatureCompiler().compile_cluster(
        evaded_cluster, "nuclear", DAY)
    multi_after = MultiWindowCompiler(MultiWindowConfig(
        max_windows=6, max_tokens_per_window=40)).compile_cluster(
            evaded_cluster, "nuclear", DAY)

    def detection(signature):
        if signature is None:
            return 0
        return sum(1 for text in fresh_evaded if signature.matches(text))

    def false_positives(signature):
        if signature is None:
            return 0
        return sum(1 for text in benign if signature.matches(text))

    return {
        "clean": clean_signature,
        "single": single_after,
        "multi": multi_after,
        "clean_detects": detection(clean_signature),
        "single_detects": detection(single_after),
        "multi_detects": detection(multi_after),
        "multi_fp": false_positives(multi_after),
        "fresh_count": len(fresh_evaded),
    }


def test_ablation_evasion(benchmark, generator: TelemetryGenerator):
    outcome = benchmark.pedantic(run_scenario, args=(generator,), rounds=1,
                                 iterations=1)
    clean = outcome["clean"]
    single = outcome["single"]
    multi = outcome["multi"]

    rows = [
        ["clean cluster, single window", clean.token_length,
         f"{outcome['clean_detects']}/{outcome['fresh_count']}"],
        ["evaded cluster, single window",
         single.token_length if single else 0,
         f"{outcome['single_detects']}/{outcome['fresh_count']}"],
        ["evaded cluster, multi window",
         sum(multi.token_lengths) if multi else 0,
         f"{outcome['multi_detects']}/{outcome['fresh_count']}"],
    ]
    print()
    print(format_table(
        ["signature", "matched tokens", "detects fresh evaded variants"],
        rows,
        title="Ablation: junk-statement evasion vs multi-window signatures "
              "(Section V)"))

    # The evasion defeats the signature compiled before it appeared.
    assert outcome["clean_detects"] == 0
    # Recompiling single-window still works but with far less structure to
    # pin down; the multi-window extension recovers more matched tokens, at
    # least as much detection, and no benign false positives.  (Fresh evaded
    # variants re-randomize the junk placement, so an occasional variant can
    # still slip past a window boundary — the paper's point is the recovered
    # specificity, not perfection against an adaptive attacker.)
    assert multi is not None
    assert multi.window_count >= 2
    single_tokens = single.token_length if single else 0
    assert single_tokens < clean.token_length
    assert sum(multi.token_lengths) > single_tokens
    assert outcome["multi_detects"] >= outcome["single_detects"]
    assert outcome["multi_detects"] >= outcome["fresh_count"] - 1
    assert outcome["multi_fp"] == 0
