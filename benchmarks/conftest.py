"""Shared fixtures for the benchmark/reproduction suite.

The month-long experiment is by far the most expensive piece, and several
figures (6, 12, 13, 14 and the headline rates) are different views of the
same run, so it is computed once per session and shared.  Volumes are scaled
down from the paper's 80k-500k samples/day to keep the suite runnable on a
laptop; the DESIGN.md substitution table and EXPERIMENTS.md record the
scaling.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import platform
import sys

import pytest

from repro.core.config import KizzleConfig
from repro.ekgen import StreamConfig, TelemetryGenerator
from repro.evalharness import ExperimentConfig, MonthExperiment

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import check_regression as bench_gate  # noqa: E402 - needs the path above

AUGUST_START = datetime.date(2014, 8, 1)
AUGUST_END = datetime.date(2014, 8, 31)

#: Repo root, where the per-run benchmark artifact is written.
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def pytest_collection_modifyitems(config, items):
    """Everything under benchmarks/ is the reproduction suite: mark it
    ``bench`` and ``slow`` so ``pytest -m "not slow"`` keeps the inner loop
    fast without maintaining per-file marker lists.  (The hook sees the
    whole session's items, so filter to this directory.)"""
    bench_dir = pathlib.Path(__file__).resolve().parent
    for item in items:
        if bench_dir in pathlib.Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.bench)
            item.add_marker(pytest.mark.slow)


def pytest_sessionfinish(session, exitstatus):
    """Serialize pytest-benchmark results to a ``BENCH_*`` artifact in the
    managed ``bench_history/`` directory (git-ignored) so the performance
    trajectory is tracked PR-over-PR without littering the repo root.

    Same-day reruns get a monotonic run suffix (``BENCH_<date>_<n>.json``)
    instead of overwriting the day's earlier artifact — the regression gate
    compares the newest two artifacts, so clobbering the previous run would
    silently destroy its own baseline.  History is bounded: only the newest
    ``check_regression.DEFAULT_HISTORY`` artifacts are kept.
    """
    bench_session = getattr(session.config, "_benchmarksession", None)
    if bench_session is None or not bench_session.benchmarks:
        return
    payload = {
        "date": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "benchmarks": [
            {
                "name": bench.name,
                "fullname": bench.fullname,
                "rounds": bench.stats.rounds,
                "mean_s": bench.stats.mean,
                "stddev_s": bench.stats.stddev,
                "min_s": bench.stats.min,
                "max_s": bench.stats.max,
                "extra_info": dict(bench.extra_info or {}),
            }
            for bench in bench_session.benchmarks
        ],
    }
    history = bench_gate.history_root(REPO_ROOT, create=True)
    path = history / bench_gate.next_artifact_name(history, payload["date"])
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    bench_gate.prune_history(history)


@pytest.fixture(scope="session")
def month_config() -> ExperimentConfig:
    return ExperimentConfig(
        start=AUGUST_START,
        end=AUGUST_END,
        seed_days=3,
        stream=StreamConfig(
            benign_per_day=30,
            kit_daily_counts={"angler": 14, "sweetorange": 6, "nuclear": 5,
                              "rig": 3},
            seed=20140801,
        ),
        kizzle=KizzleConfig(machines=10, min_points=3),
    )


@pytest.fixture(scope="session")
def month_report(month_config):
    """The full August 2014 run shared by the accuracy figures.

    A plain-text summary of the run is also written next to the benchmarks
    (``benchmarks/results_month_summary.txt``) so the measured numbers are
    available even when pytest captures the per-test output; EXPERIMENTS.md
    points at that file.
    """
    experiment = MonthExperiment(month_config)
    report = experiment.run()
    _dump_summary(report)
    return report


def _dump_summary(report) -> None:
    import pathlib

    from repro.evalharness import format_absolute_counts, format_day_series

    lines = []
    rates = report.overall_rates()
    lines.append("Month experiment summary (synthetic stream, August 2014)")
    lines.append("")
    lines.append(f"Kizzle FP rate: {rates['kizzle_fp_rate']:.4%}   "
                 f"Kizzle FN rate: {rates['kizzle_fn_rate']:.4%}")
    lines.append(f"AV     FP rate: {rates['av_fp_rate']:.4%}   "
                 f"AV     FN rate: {rates['av_fn_rate']:.4%}")
    counts = report.cluster_count_range()
    lines.append(f"Clusters per day: {counts['min']}-{counts['max']}")
    lines.append("")
    lines.append(format_absolute_counts(report.ground_truth.kit_totals(),
                                        report.av_counts(),
                                        report.kizzle_counts()))
    lines.append("")
    fn = report.fn_series()
    lines.append(format_day_series(
        fn["dates"], {"AV FN": fn["av"], "Kizzle FN": fn["kizzle"]},
        title="False negatives per day (Figure 13b)"))
    angler = report.fn_series("angler")
    lines.append("")
    lines.append(format_day_series(
        angler["dates"], {"AV FN": angler["av"],
                          "Kizzle FN": angler["kizzle"]},
        title="Angler false negatives per day (Figure 6)"))
    path = pathlib.Path(__file__).parent / "results_month_summary.txt"
    path.write_text("\n".join(lines), encoding="utf-8")


@pytest.fixture(scope="session")
def generator() -> TelemetryGenerator:
    """A default-scale telemetry generator for the non-accuracy figures."""
    return TelemetryGenerator(StreamConfig(seed=20140801))
