"""Shared fixtures for the benchmark/reproduction suite.

The month-long experiment is by far the most expensive piece, and several
figures (6, 12, 13, 14 and the headline rates) are different views of the
same run, so it is computed once per session and shared.  Volumes are scaled
down from the paper's 80k-500k samples/day to keep the suite runnable on a
laptop; the DESIGN.md substitution table and EXPERIMENTS.md record the
scaling.
"""

from __future__ import annotations

import datetime

import pytest

from repro.core.config import KizzleConfig
from repro.ekgen import StreamConfig, TelemetryGenerator
from repro.evalharness import ExperimentConfig, MonthExperiment

AUGUST_START = datetime.date(2014, 8, 1)
AUGUST_END = datetime.date(2014, 8, 31)


@pytest.fixture(scope="session")
def month_config() -> ExperimentConfig:
    return ExperimentConfig(
        start=AUGUST_START,
        end=AUGUST_END,
        seed_days=3,
        stream=StreamConfig(
            benign_per_day=30,
            kit_daily_counts={"angler": 14, "sweetorange": 6, "nuclear": 5,
                              "rig": 3},
            seed=20140801,
        ),
        kizzle=KizzleConfig(machines=10, min_points=3),
    )


@pytest.fixture(scope="session")
def month_report(month_config):
    """The full August 2014 run shared by the accuracy figures.

    A plain-text summary of the run is also written next to the benchmarks
    (``benchmarks/results_month_summary.txt``) so the measured numbers are
    available even when pytest captures the per-test output; EXPERIMENTS.md
    points at that file.
    """
    experiment = MonthExperiment(month_config)
    report = experiment.run()
    _dump_summary(report)
    return report


def _dump_summary(report) -> None:
    import pathlib

    from repro.evalharness import format_absolute_counts, format_day_series

    lines = []
    rates = report.overall_rates()
    lines.append("Month experiment summary (synthetic stream, August 2014)")
    lines.append("")
    lines.append(f"Kizzle FP rate: {rates['kizzle_fp_rate']:.4%}   "
                 f"Kizzle FN rate: {rates['kizzle_fn_rate']:.4%}")
    lines.append(f"AV     FP rate: {rates['av_fp_rate']:.4%}   "
                 f"AV     FN rate: {rates['av_fn_rate']:.4%}")
    counts = report.cluster_count_range()
    lines.append(f"Clusters per day: {counts['min']}-{counts['max']}")
    lines.append("")
    lines.append(format_absolute_counts(report.ground_truth.kit_totals(),
                                        report.av_counts(),
                                        report.kizzle_counts()))
    lines.append("")
    fn = report.fn_series()
    lines.append(format_day_series(
        fn["dates"], {"AV FN": fn["av"], "Kizzle FN": fn["kizzle"]},
        title="False negatives per day (Figure 13b)"))
    angler = report.fn_series("angler")
    lines.append("")
    lines.append(format_day_series(
        angler["dates"], {"AV FN": angler["av"],
                          "Kizzle FN": angler["kizzle"]},
        title="Angler false negatives per day (Figure 6)"))
    path = pathlib.Path(__file__).parent / "results_month_summary.txt"
    path.write_text("\n".join(lines), encoding="utf-8")


@pytest.fixture(scope="session")
def generator() -> TelemetryGenerator:
    """A default-scale telemetry generator for the non-accuracy figures."""
    return TelemetryGenerator(StreamConfig(seed=20140801))
