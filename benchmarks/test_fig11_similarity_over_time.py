"""Figure 11: day-over-day similarity of unpacked kit cores over August 2014.

Nuclear and Angler barely change (>= 99% in the paper), Sweet Orange stays
high, and RIG is the outlier whose short, URL-dominated body churns down to
~50% — the paper's explanation for why RIG is the hardest kit to track.
"""

from __future__ import annotations

import datetime

from repro.ekgen import TelemetryGenerator
from repro.evalharness import format_day_series
from repro.evalharness.similarity import similarity_all_kits

START = datetime.date(2014, 8, 2)
END = datetime.date(2014, 8, 31)


def test_fig11_similarity_over_time(benchmark, generator: TelemetryGenerator):
    series = benchmark(similarity_all_kits, generator, START, END)

    print()
    print(format_day_series(
        series["nuclear"].dates,
        {kit: series[kit].similarity
         for kit in ("nuclear", "sweetorange", "angler", "rig")},
        title="Figure 11: unpacked-core similarity over time (max overlap "
              "with all previous days)"))
    for kit in ("nuclear", "sweetorange", "angler", "rig"):
        print(f"  {kit:12s} min {series[kit].minimum():.2%} "
              f"mean {series[kit].mean():.2%}")

    # Figure 11(a)/(c): Nuclear and Angler stay essentially unchanged.
    assert series["nuclear"].minimum() > 0.95
    assert series["angler"].minimum() > 0.95
    # Figure 11(b): Sweet Orange stays high as well.
    assert series["sweetorange"].minimum() > 0.80
    # Figure 11(d): RIG is the outlier with far lower similarity.
    assert series["rig"].mean() < series["nuclear"].mean() - 0.15
    assert series["rig"].minimum() < 0.75
    # ... but RIG never becomes unrecognizable either (the labeler's looser
    # RIG threshold relies on this).
    assert series["rig"].minimum() > 0.2
