"""Figure 13: false positives and false negatives over time, Kizzle vs AV.

The paper's qualitative findings: both engines keep FP rates very small;
Kizzle's FN rate stays low all month while the AV's FN rate spikes during
the mid-August Angler window; overall Kizzle's FN is below the AV's.
"""

from __future__ import annotations

import datetime

from repro.evalharness import format_day_series
from repro.evalharness.reporting import sparkline


def test_fig13_fp_fn_over_time(benchmark, month_report):
    fn = benchmark(month_report.fn_series)
    fp = month_report.fp_series()
    dates = fn["dates"]

    print()
    print(format_day_series(
        dates, {"AV FP": fp["av"], "Kizzle FP": fp["kizzle"]},
        title="Figure 13(a): false positives over time"))
    print()
    print(format_day_series(
        dates, {"AV FN": fn["av"], "Kizzle FN": fn["kizzle"]},
        title="Figure 13(b): false negatives over time"))
    print()
    print("AV FN trend:    ", sparkline(fn["av"]))
    print("Kizzle FN trend:", sparkline(fn["kizzle"]))

    def mean(values):
        return sum(values) / len(values) if values else 0.0

    # (a) FP rates are small for both engines all month.
    assert max(fp["kizzle"]) <= 0.10
    assert max(fp["av"]) <= 0.15
    assert mean(fp["kizzle"]) <= mean(fp["av"]) + 0.01

    # (b) Kizzle's FN stays low; the AV spikes during the Angler window.
    window = [index for index, date in enumerate(dates)
              if datetime.date(2014, 8, 13) <= date <= datetime.date(2014, 8, 18)]
    av_window_mean = mean([fn["av"][i] for i in window])
    kizzle_window_mean = mean([fn["kizzle"][i] for i in window])
    assert av_window_mean > 0.25          # the paper shows ~40%+ spikes
    assert kizzle_window_mean < 0.25
    assert kizzle_window_mean < av_window_mean

    # Month-long means: Kizzle below AV, Kizzle in the single digits.
    assert mean(fn["kizzle"]) < mean(fn["av"])
    assert mean(fn["kizzle"]) < 0.12
