"""Figures 9 and 10: signature generation in action and the generated
signatures for Nuclear and Sweet Orange.

The bench builds a day's cluster for each kit, runs the signature compiler
and checks the structural properties the paper highlights: Nuclear's
signature keys on the delimiter-spelled method names and ties repeated
randomized identifiers together with backreferences; Sweet Orange's keys on
the ``Math.sqrt`` integer obfuscation; both are long and very specific, and
both match every sample of the cluster after AV-style normalization.
"""

from __future__ import annotations

import datetime
import random
import re

from repro.ekgen import TelemetryGenerator
from repro.scanner.normalizer import normalize_for_scan
from repro.signatures import SignatureCompiler

DAY = datetime.date(2014, 8, 27)  # Nuclear's UluN delimiter period


def build_cluster(generator, kit, count=8):
    return [generator.kits[kit].generate(DAY, random.Random(seed)).content
            for seed in range(count)]


def compile_for(generator, kit):
    cluster = build_cluster(generator, kit)
    signature = SignatureCompiler().compile_cluster(cluster, kit, DAY)
    return cluster, signature


def test_fig09_10_signatures(benchmark, generator: TelemetryGenerator):
    nuclear_cluster, nuclear_signature = benchmark(
        compile_for, generator, "nuclear")
    sweetorange_cluster, sweetorange_signature = compile_for(
        generator, "sweetorange")

    print()
    for kit, signature in (("nuclear", nuclear_signature),
                           ("sweetorange", sweetorange_signature)):
        print(f"Figure 10 ({kit}): {signature.length} chars, "
              f"{signature.token_length} tokens")
        print(f"  {signature.pattern[:240]}...")
        print()

    # Every cluster sample matches its signature (Figure 9's construction).
    for cluster, signature in ((nuclear_cluster, nuclear_signature),
                               (sweetorange_cluster, sweetorange_signature)):
        assert signature is not None
        for content in cluster:
            assert signature.matches(normalize_for_scan(content))

    # Nuclear: the delimiter-spelled method names (sUluNuUluNb...) are in the
    # signature, and randomized identifiers are tied with backreferences.
    assert "UluN" in nuclear_signature.pattern
    assert "(?P<var0>" in nuclear_signature.pattern
    assert "(?P=var" in nuclear_signature.pattern
    # Nuclear: the per-response payload/key are generalized, not pinned.
    assert re.search(r"\[0-9\]\{\d+,\d+\}", nuclear_signature.pattern)

    # Sweet Orange: the Math.sqrt obfuscation and the charAt selector idiom
    # are part of the signature (Figure 10b keys on exactly these).
    assert r"Math\.sqrt\(" in sweetorange_signature.pattern
    assert "charAt" in sweetorange_signature.pattern

    # Both signatures are long and specific (the paper's observation that
    # this keeps false positives down), with the token cap respected.
    for signature in (nuclear_signature, sweetorange_signature):
        assert signature.token_length <= 200
        assert signature.length > 500

    # Neither signature fires on the other kit or on benign content.
    cross = normalize_for_scan(sweetorange_cluster[0])
    assert not nuclear_signature.matches(cross)
    from repro.ekgen import BenignGenerator

    benign = BenignGenerator().generate(DAY, random.Random(3))
    normalized_benign = normalize_for_scan(benign.content)
    assert not nuclear_signature.matches(normalized_benign)
    assert not sweetorange_signature.matches(normalized_benign)
