"""Figure 15: a representative (near-)false-positive.

The paper shows a benign PluginDetect library sharing a very high (79%)
winnow overlap with the Nuclear exploit kit core: legitimate plugin-probing
code looks a lot like a kit's fingerprinting layer.  The bench measures the
overlap of our PluginDetect-like benign family against every kit core and
checks that it is high for Nuclear/Angler (which embed the same fingerprinting
block) yet stays below the labeling threshold, while ordinary benign families
show near-zero overlap.
"""

from __future__ import annotations

import datetime
import random

from repro.ekgen import BenignGenerator, TelemetryGenerator
from repro.evalharness import format_table
from repro.labeling.corpus import DEFAULT_THRESHOLDS
from repro.winnowing import overlap

DAY = datetime.date(2014, 8, 20)


def measure(generator: TelemetryGenerator):
    benign = BenignGenerator()
    plugindetect = benign.generate(DAY, random.Random(15),
                                   family="plugindetect")
    analytics = benign.generate(DAY, random.Random(15), family="analytics")
    rows = []
    overlaps = {}
    for kit in ("nuclear", "angler", "sweetorange", "rig"):
        core = generator.reference_core(kit, DAY)
        plug = overlap(plugindetect.unpacked, core)
        plain = overlap(analytics.unpacked, core)
        overlaps[kit] = plug
        rows.append([kit, f"{plug:.2%}", f"{plain:.2%}",
                     f"{DEFAULT_THRESHOLDS[kit]:.0%}"])
    return rows, overlaps


def test_fig15_false_positive(benchmark, generator: TelemetryGenerator):
    rows, overlaps = benchmark(measure, generator)
    print()
    print(format_table(
        ["kit core", "PluginDetect overlap", "analytics overlap",
         "label threshold"],
        rows,
        title="Figure 15: benign plugin-probing code vs kit cores "
              "(paper: 79% overlap with Nuclear)"))

    # The PluginDetect-like library shares a large fraction of its
    # fingerprints with the Nuclear/Angler cores (the paper reports 79%)...
    assert overlaps["nuclear"] > 0.45
    assert overlaps["angler"] > 0.45
    # ... which is exactly why per-family thresholds have to sit above it.
    assert overlaps["nuclear"] < DEFAULT_THRESHOLDS["nuclear"]
    # Ordinary benign families are nowhere near.
    analytics_overlap = float(rows[0][2].rstrip("%")) / 100.0
    assert analytics_overlap < 0.2
    # RIG's compact core shares much less with a generic plugin prober.
    assert overlaps["rig"] < overlaps["nuclear"]
