"""Figure 2: CVEs used by each exploit kit, broken down by component."""

from __future__ import annotations

from repro.ekgen.cves import AV_CHECK_KITS, CVE_INVENTORY, components_for_kit
from repro.evalharness import format_table

KIT_ORDER = ["sweetorange", "angler", "rig", "nuclear"]
COMPONENTS = ["flash", "silverlight", "java", "reader", "ie"]


def build_rows():
    rows = []
    for kit in KIT_ORDER:
        row = [kit]
        for component in COMPONENTS:
            cves = [cve.replace("CVE-", "")
                    for comp, cve in CVE_INVENTORY[kit] if comp == component]
            row.append(", ".join(cves) if cves else "-")
        row.append("Yes" if kit in AV_CHECK_KITS else "No")
        rows.append(row)
    return rows


def test_fig02_cve_table(benchmark):
    rows = benchmark(build_rows)
    print()
    print(format_table(
        ["EK"] + COMPONENTS + ["AV check"], rows,
        title="Figure 2: CVEs used for each malware kit (September 2014)"))

    # Shape checks against the paper's table.
    table = {row[0]: row for row in rows}
    assert "2014-0515" in table["sweetorange"][1]
    assert "2013-0074" in table["angler"][2]
    assert "2010-0188" in table["nuclear"][4]
    assert all("2013-2551" in table[kit][5] for kit in KIT_ORDER)
    assert table["sweetorange"][6] == "No"
    assert table["angler"][6] == "Yes"
    assert table["rig"][6] == "Yes"
    assert table["nuclear"][6] == "Yes"
    # Kits carry roughly 4-7 CVEs (Exploit Pack Table observation).
    for kit in KIT_ORDER:
        assert 4 <= len(CVE_INVENTORY[kit]) <= 7
    # Each kit targets multiple plugin/browser components.
    for kit in KIT_ORDER:
        assert len(components_for_kit(kit)) >= 3
