#!/usr/bin/env python
"""Backend comparison: one pipeline, three execution substrates.

Runs the same two seeded days (a cold day one, then a warm day two that
sheds and carries forward) through each execution backend:

* ``serial``  — everything inline in one process;
* ``process`` — the distance-pair workload fans out over a real
  multiprocessing pool;
* ``distsim`` — additionally simulates the paper's machine cluster, so the
  timing report includes virtual makespan and per-stage utilization.

and then demonstrates the two contracts the backends are built around:

1. **results are byte-identical** — cluster labels, signatures and verdicts
   never depend on where the work ran;
2. **telemetry differs by design** — wall clock is real everywhere, but
   only distsim reports the virtual 50-machine timeline.

Run with::

    python examples/backend_comparison.py
"""

from __future__ import annotations

import datetime

from repro import BackendConfig, Kizzle, KizzleConfig, StreamConfig, \
    TelemetryGenerator
from repro.core.config import IncrementalConfig

KITS = ("nuclear", "angler", "rig", "sweetorange")
DAY_ONE = datetime.date(2014, 8, 5)
DAY_TWO = datetime.date(2014, 8, 6)


def run_backend(kind: str):
    """Two warm-pipeline days on one backend; returns (kizzle, results)."""
    generator = TelemetryGenerator(StreamConfig(
        benign_per_day=20,
        kit_daily_counts={"angler": 10, "nuclear": 5, "sweetorange": 5,
                          "rig": 3},
        seed=2014,
    ))
    kizzle = Kizzle(KizzleConfig(
        machines=10,
        incremental=IncrementalConfig(enabled=True),
        backend=BackendConfig(kind=kind),
    ))
    for kit in KITS:
        kizzle.seed_known_kit(
            kit, [generator.reference_core(kit, DAY_ONE
                                           - datetime.timedelta(days=7))])
    results = []
    for date in (DAY_ONE, DAY_TWO):
        batch = generator.generate_day(date)
        results.append(kizzle.process_day(
            [(s.sample_id, s.content) for s in batch.samples], date))
    return kizzle, results


def fingerprint(kizzle, results):
    """Everything that must be identical across backends."""
    return {
        "labels": [sorted((tuple(sorted(s.sample_id
                                        for s in report.cluster.samples)),
                           report.kit)
                          for report in result.clusters)
                   for result in results],
        "signatures": [(s.kit, s.created.isoformat(), s.pattern)
                       for s in kizzle.database],
        "shed": [result.shed_count for result in results],
    }


def main() -> None:
    print("The daily pipeline is a stage graph:")
    print()
    reference_graph = Kizzle(KizzleConfig(
        incremental=IncrementalConfig(enabled=True))).day_graph()
    for line in reference_graph.describe().splitlines():
        print(f"    {line}")
    print()

    runs = {}
    for kind in ("serial", "process", "distsim"):
        print(f"running 2 days on --backend {kind} ...")
        runs[kind] = run_backend(kind)
    print()

    # ------------------------------------------------------------------
    # Contract 1: byte-identical results.
    # ------------------------------------------------------------------
    reference = fingerprint(*runs["serial"])
    for kind in ("process", "distsim"):
        assert fingerprint(*runs[kind]) == reference, \
            f"{kind} diverged from serial!"
    day_two = runs["serial"][1][1]
    print(f"identical across backends: {len(reference['signatures'])} "
          f"signatures, {day_two.cluster_count} day-two clusters, "
          f"{day_two.shed_count} day-two samples shed")
    print()

    # ------------------------------------------------------------------
    # Contract 2: the telemetry tells each backend's story.
    # ------------------------------------------------------------------
    header = f"{'backend':>8}  {'wall day2':>9}  {'virtual day2':>12}  " \
             f"{'machines':>8}  {'util(shed)':>10}"
    print(header)
    print("-" * len(header))
    for kind, (kizzle, results) in runs.items():
        result = results[1]
        wall = sum(result.stage_walls.values())
        timing = result.timing
        utilization = timing.stage_utilization.get("shed")
        print(f"{kind:>8}  {wall:>8.2f}s  {timing.total_time:>11.1f}s  "
              f"{timing.machine_count:>8}  "
              f"{utilization if utilization is not None else '-':>10}")
    print()
    print("per-stage wall clock, day two (serial backend):")
    for stage, seconds in runs["serial"][1][1].stage_walls.items():
        print(f"    {stage:>8}: {seconds:.3f}s")
    print()
    print("Pick a backend with KizzleConfig(backend=BackendConfig(kind=...))")
    print("or on the CLI: kizzle-repro --backend {serial,process,distsim}")


if __name__ == "__main__":
    main()
