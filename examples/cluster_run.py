#!/usr/bin/env python
"""Multi-machine execution end to end, on one laptop.

Starts the TCP coordinator (``--backend cluster``), spawns two real worker
*subprocesses* that connect to it over localhost sockets, processes two
seeded days of telemetry on them, and then proves the two properties the
backend is built around:

1. **byte-identity** — labels and signatures match a serial rerun exactly
   (where the map ran never leaks into what came out);
2. **fault tolerance** — a rerun in which one of the two workers is
   SIGKILLed mid-map still matches, with the re-dispatch path visibly
   exercised (``redispatch_count >= 1``).

On a real deployment the workers simply run on other machines::

    # machine A (the coordinator; pick a routable listen address)
    kizzle-repro --backend cluster --listen 0.0.0.0:9200 \\
        --spawn-workers 0 process-day

    # machines B, C, ... (one per core, as many machines as you like)
    python -m repro.exec.worker --connect machine-a:9200

Run this demo with::

    python examples/cluster_run.py
"""

from __future__ import annotations

import datetime

from repro import BackendConfig, Kizzle, KizzleConfig, StreamConfig, \
    TelemetryGenerator
from repro.exec.cluster import spawn_local_worker

KITS = ("nuclear", "angler", "rig", "sweetorange")
DAY_ONE = datetime.date(2014, 8, 5)
DAY_TWO = datetime.date(2014, 8, 6)


def _generator():
    return TelemetryGenerator(StreamConfig(
        benign_per_day=20,
        kit_daily_counts={"angler": 10, "nuclear": 5, "sweetorange": 5,
                          "rig": 3},
        seed=2014,
    ))


def run(kind: str, faulty_worker: bool = False):
    """Two days on one backend; returns (fingerprint, telemetry)."""
    generator = _generator()
    config = KizzleConfig(
        machines=8, partitions=4,
        backend=BackendConfig(
            kind=kind,
            # Workers are spawned by hand below when injecting a fault.
            spawn_workers=0 if (kind != "cluster" or faulty_worker) else 2,
            heartbeat_timeout_s=2.0))
    procs = []
    with Kizzle(config) as kizzle:
        if kind == "cluster" and faulty_worker:
            backend = kizzle.backend
            backend.coordinator.min_workers = 2
            procs = [
                spawn_local_worker(backend.address, heartbeat_interval=0.5),
                spawn_local_worker(backend.address, heartbeat_interval=0.5,
                                   fault="sigkill-mid-task"),
            ]
        for kit in KITS:
            kizzle.seed_known_kit(
                kit, [generator.reference_core(
                    kit, DAY_ONE - datetime.timedelta(days=7))])
        results = []
        for date in (DAY_ONE, DAY_TWO):
            batch = generator.generate_day(date)
            results.append(kizzle.process_day(
                [(s.sample_id, s.content) for s in batch.samples], date))
        fingerprint = {
            "labels": [sorted((tuple(sorted(s.sample_id
                                            for s in report.cluster.samples)),
                               report.kit)
                              for report in result.clusters)
                       for result in results],
            "signatures": [(s.kit, s.created.isoformat(), s.pattern)
                           for s in kizzle.database],
        }
        telemetry = {}
        if kind == "cluster":
            telemetry = {
                "remote_tasks": kizzle.backend.remote_task_count,
                "redispatch": kizzle.backend.redispatch_count,
                "tasks_by_worker":
                    dict(kizzle.backend.coordinator.tasks_by_worker),
                "pairs_by_worker": {
                    worker: stats.pairs
                    for worker, stats in
                    kizzle.clusterer.engine.remote_worker_stats.items()},
            }
        # Leaving the `with` drains the cluster: workers get a shutdown,
        # spawned subprocesses are reaped.
    for proc in procs:
        if proc.poll() is None:
            proc.kill()
        proc.wait(timeout=10.0)
    return fingerprint, telemetry


def main() -> None:
    print("reference run (serial, inline) ...")
    reference, _ = run("serial")

    print("cluster run: coordinator + 2 localhost worker subprocesses ...")
    clustered, telemetry = run("cluster")
    assert clustered == reference, "cluster run diverged from serial!"
    print(f"    byte-identical to serial: "
          f"{len(reference['signatures'])} signatures")
    print(f"    tasks executed remotely: {telemetry['remote_tasks']} "
          f"(per worker: {telemetry['tasks_by_worker']})")
    print(f"    distance pairs decided per worker: "
          f"{telemetry['pairs_by_worker']}")
    print()

    print("fault run: one of the two workers is SIGKILLed mid-map ...")
    faulted, telemetry = run("cluster", faulty_worker=True)
    assert faulted == reference, "recovery diverged from serial!"
    assert telemetry["redispatch"] >= 1, "the fault never fired"
    print(f"    still byte-identical; re-dispatched leases: "
          f"{telemetry['redispatch']}")
    print()
    print("Every RNG seed rides on task identity (partition index, chunk")
    print("index), never on worker identity - so placement, worker count,")
    print("and mid-map failures can never change the day's output.")


if __name__ == "__main__":
    main()
