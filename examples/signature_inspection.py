#!/usr/bin/env python
"""Inspect Kizzle-generated signatures for each exploit kit.

Mirrors the paper's Figures 9 and 10: for every kit we build a small cluster
of packed samples, run the signature compiler, and print the resulting regex
together with what it keyed on.  The script then demonstrates the adversarial
cycle at the signature level: after the kit rotates its packer the old
signature stops matching, and recompiling from the new cluster restores
detection.

Run with::

    python examples/signature_inspection.py
"""

from __future__ import annotations

import datetime
import random
import textwrap

from repro.ekgen import TelemetryGenerator
from repro.scanner.normalizer import normalize_for_scan
from repro.signatures import SignatureCompiler, SignatureConfig

KITS = ("nuclear", "sweetorange", "angler", "rig")
DAY = datetime.date(2014, 8, 5)
LATER = datetime.date(2014, 8, 27)  # after several packer rotations


def build_cluster(generator: TelemetryGenerator, kit: str,
                  day: datetime.date, count: int = 8) -> list:
    return [generator.kits[kit].generate(day, random.Random(seed)).content
            for seed in range(count)]


def main() -> None:
    generator = TelemetryGenerator()
    compiler = SignatureCompiler(SignatureConfig())

    signatures = {}
    for kit in KITS:
        cluster = build_cluster(generator, kit, DAY)
        signature = compiler.compile_cluster(cluster, kit, DAY)
        signatures[kit] = signature
        print(f"=== {kit} ===")
        print(f"window: {signature.token_length} tokens, "
              f"signature: {signature.length} characters")
        print(textwrap.fill(signature.pattern[:400], width=76,
                            subsequent_indent="    "))
        if signature.length > 400:
            print("    ... (truncated)")
        matched = sum(1 for content in cluster
                      if signature.matches(normalize_for_scan(content)))
        print(f"matches {matched}/{len(cluster)} cluster samples")
        print()

    print("=== adversarial cycle ===")
    for kit in ("nuclear", "rig"):
        old_signature = signatures[kit]
        later_sample = generator.kits[kit].generate(LATER, random.Random(77))
        still_matches = old_signature.matches(
            normalize_for_scan(later_sample.content))
        print(f"{kit}: signature from {DAY} matches a {LATER} sample: "
              f"{still_matches}")
        new_cluster = build_cluster(generator, kit, LATER)
        new_signature = compiler.compile_cluster(new_cluster, kit, LATER)
        recovers = new_signature.matches(
            normalize_for_scan(later_sample.content))
        print(f"{kit}: recompiled signature from {LATER} matches: {recovers}")
    print()
    print("The outer packer rotation defeats yesterday's signature; because")
    print("Kizzle compiles signatures automatically from the day's cluster,")
    print("the response costs minutes instead of an analyst's day (Figure 1).")


if __name__ == "__main__":
    main()
