#!/usr/bin/env python
"""Quickstart: run Kizzle over one day of synthetic grayware.

This walks through the whole public API in one file:

1. build a synthetic telemetry stream (the stand-in for the paper's IE
   telemetry);
2. seed Kizzle with known unpacked exploit-kit cores;
3. process one day of samples: cluster, label, compile signatures;
4. scan the day's samples with the generated signatures and print what was
   detected.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import datetime

from repro import Kizzle, KizzleConfig, StreamConfig, TelemetryGenerator

KITS = ("nuclear", "angler", "rig", "sweetorange")


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A small synthetic grayware stream (see repro.ekgen for the knobs).
    # ------------------------------------------------------------------
    generator = TelemetryGenerator(StreamConfig(
        benign_per_day=30,
        kit_daily_counts={"angler": 12, "nuclear": 6, "sweetorange": 6,
                          "rig": 4},
        seed=2014,
    ))

    # ------------------------------------------------------------------
    # 2. Kizzle, seeded with unpacked kit cores captured before the study
    #    window (the paper seeds the pipeline the same way).
    # ------------------------------------------------------------------
    kizzle = Kizzle(KizzleConfig(machines=10, min_points=3))
    seed_day = datetime.date(2014, 7, 28)
    for kit in KITS:
        kizzle.seed_known_kit(kit, [generator.reference_core(kit, seed_day)])

    # ------------------------------------------------------------------
    # 3. Process one day.
    # ------------------------------------------------------------------
    day = datetime.date(2014, 8, 5)
    batch = generator.generate_day(day)
    result = kizzle.process_day(
        [(sample.sample_id, sample.content) for sample in batch.samples], day)

    print(f"Processed {result.sample_count} samples for {day}")
    print(f"  clusters found:          {result.cluster_count}")
    print(f"  malicious clusters:      {len(result.malicious_clusters)}")
    print(f"  noise samples:           {result.noise_count}")
    print(f"  simulated cluster time:  {result.timing.total_time / 60:.1f} "
          f"minutes on {kizzle.config.machines} machines")
    print()
    for report in result.clusters:
        verdict = report.kit or "benign"
        print(f"  cluster of {report.size:3d} samples -> {verdict:12s} "
              f"(best family {report.label.best_family}, "
              f"overlap {report.label.overlap:.2f})")
    print()
    print(f"New signatures generated: {len(result.new_signatures)}")
    for signature in result.new_signatures:
        print(f"  [{signature.kit}] {signature.length} chars, "
              f"{signature.token_length} tokens")
        print(f"    {signature.pattern[:100]}...")

    # ------------------------------------------------------------------
    # 4. Scan the day's samples with the freshly compiled signatures.
    # ------------------------------------------------------------------
    detected_by_kit = {}
    totals_by_kit = {}
    false_positives = 0
    for sample in batch.samples:
        hit = kizzle.detects(sample.content)
        if sample.is_malicious:
            totals_by_kit[sample.kit] = totals_by_kit.get(sample.kit, 0) + 1
            if hit:
                detected_by_kit[sample.kit] = detected_by_kit.get(sample.kit, 0) + 1
        elif hit:
            false_positives += 1

    print()
    print("Detection with the generated signatures:")
    for kit in sorted(totals_by_kit):
        detected = detected_by_kit.get(kit, 0)
        print(f"  {kit:12s} {detected:3d} / {totals_by_kit[kit]:3d}")
    print(f"  false positives on benign samples: {false_positives}")


if __name__ == "__main__":
    main()
