#!/usr/bin/env python
"""Run a scaled-down version of the paper's month-long evaluation.

Drives the full evaluation harness (Section IV) over a configurable window:
Kizzle and the simulated commercial AV both scan every day's samples, and the
script prints the per-day false-negative comparison, the Figure 14-style
absolute counts, and the headline rates.

Run with::

    python examples/month_evaluation.py            # default: first 2 weeks
    python examples/month_evaluation.py --days 31  # the full month (slower)
"""

from __future__ import annotations

import argparse
import datetime

from repro.core.config import KizzleConfig
from repro.ekgen import StreamConfig
from repro.evalharness import (
    ExperimentConfig,
    MonthExperiment,
    format_absolute_counts,
    format_day_series,
)
from repro.evalharness.reporting import sparkline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=int, default=14,
                        help="number of days of August 2014 to simulate")
    parser.add_argument("--benign", type=int, default=40,
                        help="benign samples per day")
    args = parser.parse_args()

    start = datetime.date(2014, 8, 1)
    end = start + datetime.timedelta(days=max(1, args.days) - 1)
    config = ExperimentConfig(
        start=start, end=end, seed_days=3,
        stream=StreamConfig(
            benign_per_day=args.benign,
            kit_daily_counts={"angler": 18, "sweetorange": 7, "nuclear": 5,
                              "rig": 3}),
        kizzle=KizzleConfig(machines=10, min_points=3),
    )
    experiment = MonthExperiment(config)

    def progress(record):
        print(f"  {record.date}: {record.sample_count} samples, "
              f"{record.cluster_count} clusters, "
              f"{record.new_signatures} new signatures, "
              f"Kizzle FN {record.kizzle.confusion.false_negative_rate:.1%} "
              f"vs AV FN {record.av.confusion.false_negative_rate:.1%}")

    print(f"Running the evaluation from {start} to {end}...")
    report = experiment.run(progress=progress)

    print()
    fn = report.fn_series()
    print(format_day_series(fn["dates"],
                            {"Kizzle FN": fn["kizzle"], "AV FN": fn["av"]},
                            title="False negatives over time (Figure 13b)"))
    print()
    print("Kizzle FN trend:", sparkline(fn["kizzle"]))
    print("AV FN trend:    ", sparkline(fn["av"]))
    print()
    print(format_absolute_counts(report.ground_truth.kit_totals(),
                                 report.av_counts(), report.kizzle_counts()))
    print()
    rates = report.overall_rates()
    print("Headline rates (paper: Kizzle FP < 0.03%, FN < 5%):")
    print(f"  Kizzle FP {rates['kizzle_fp_rate']:.3%}   "
          f"Kizzle FN {rates['kizzle_fn_rate']:.3%}")
    print(f"  AV     FP {rates['av_fp_rate']:.3%}   "
          f"AV     FN {rates['av_fn_rate']:.3%}")


if __name__ == "__main__":
    main()
